"""Ontological reasoning: query answering under an OWL 2 QL-style ontology.

SparqLog inherits ontological reasoning from its Warded Datalog± substrate
(requirement RQ3 of the paper): ontology axioms become extra rules that are
evaluated together with the translated query.  The example builds a small
research-group knowledge graph, adds a class/property hierarchy plus an
existential axiom, and compares SparqLog with the materialise-then-query
Stardog-like baseline.

Run with:  python examples/ontology_reasoning.py
"""

from repro import (
    Dataset,
    Ontology,
    Namespace,
    SparqLogEngine,
    StardogLikeEngine,
    parse_turtle,
)

EX = Namespace("http://ex.org/")

TURTLE_DATA = """
@prefix ex: <http://ex.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .

ex:alice rdf:type ex:Professor ; ex:teaches ex:databases ; ex:advises ex:bob .
ex:bob   rdf:type ex:PhDStudent ; ex:attends ex:databases ; ex:authored ex:paper1 .
ex:carol rdf:type ex:Postdoc ; ex:teaches ex:logic ; ex:authored ex:paper1 .
ex:paper1 rdf:type ex:Publication ; ex:cites ex:paper2 .
ex:paper2 rdf:type ex:Publication ; ex:cites ex:paper3 .
ex:paper3 rdf:type ex:Publication .
"""

PREFIXES = (
    "PREFIX ex: <http://ex.org/>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)


def build_ontology() -> Ontology:
    ontology = Ontology()
    # Class hierarchy.
    ontology.add_subclass(EX.Professor, EX.Researcher)
    ontology.add_subclass(EX.Postdoc, EX.Researcher)
    ontology.add_subclass(EX.PhDStudent, EX.Researcher)
    ontology.add_subclass(EX.Researcher, EX.Person)
    # Property hierarchy.
    ontology.add_subproperty(EX.teaches, EX.involvedIn)
    ontology.add_subproperty(EX.attends, EX.involvedIn)
    ontology.add_subproperty(EX.cites, EX.references)
    # Domain / range.
    ontology.add_domain(EX.advises, EX.Supervisor)
    ontology.add_range(EX.authored, EX.Publication)
    # Existential axiom: every publication has some (possibly unknown) author.
    ontology.add_existential(EX.Publication, EX.hasAuthor, EX.Person)
    return ontology


QUERIES = {
    "all persons (via subclass chain)":
        "SELECT ?x WHERE { ?x rdf:type ex:Person }",
    "everyone involved in a course (via subproperty)":
        "SELECT DISTINCT ?x ?c WHERE { ?x ex:involvedIn ?c }",
    "supervisors (via domain axiom)":
        "SELECT ?x WHERE { ?x rdf:type ex:Supervisor }",
    "citation closure (recursive path over inferred property)":
        "SELECT DISTINCT ?p WHERE { ex:paper1 ex:references+ ?p }",
    "publications with an (invented) author":
        "SELECT ?pub ?author WHERE { ?pub ex:hasAuthor ?author }",
}


def short(term) -> str:
    if term is None:
        return "-"
    value = getattr(term, "value", None) or getattr(term, "label", None) or str(term)
    return str(value).rsplit("/", 1)[-1]


def main() -> None:
    dataset = Dataset.from_graph(parse_turtle(TURTLE_DATA))
    ontology = build_ontology()
    sparqlog = SparqLogEngine(dataset, ontology=ontology)
    stardog = StardogLikeEngine(dataset, ontology=ontology)

    for title, body in QUERIES.items():
        query = PREFIXES + body
        print(f"=== {title} ===")
        result = sparqlog.query(query)
        for row in sorted(result.rows(), key=str):
            print("  " + "  ".join(short(term) for term in row))
        try:
            stardog_result = stardog.query(query)
            note = (
                "matches SparqLog"
                if len(stardog_result) == len(result)
                else f"{len(stardog_result)} rows (materialisation cannot invent authors)"
            )
        except Exception as error:  # noqa: BLE001 - example output only
            note = f"error: {error}"
        print(f"  [Stardog-like baseline: {note}]")
        print()


if __name__ == "__main__":
    main()
