"""Live views: continuous queries through incremental view maintenance.

The example opens a graph, materializes a two-hop join query as a live
view and subscribes to its deltas: every mutation of the graph updates
the view in O(|change|) through the differentiated operator pipeline
(see ``repro.ivm``) and pushes the exact rows that appeared or
disappeared to the subscriber — no polling, no re-evaluation.

Run with:  python examples/live_views.py
"""

from repro import Triple, create_engine, open_graph
from repro.rdf.namespace import Namespace

EX = Namespace("http://ex.org/")

FOLLOWS_OF_FOLLOWS = """
PREFIX ex: <http://ex.org/>
SELECT ?a ?c
WHERE { ?a ex:follows ?b . ?b ex:follows ?c . FILTER(?a != ?c) }
"""


def main() -> None:
    graph = open_graph(backend="encoded")
    for who, whom in [("ada", "brin"), ("brin", "cody"), ("cody", "dana")]:
        graph.add(Triple(EX[who], EX.follows, EX[whom]))

    with create_engine(graph) as engine:
        view = engine.materialize(FOLLOWS_OF_FOLLOWS)
        print(f"view maintenance: {view.maintenance}")
        print("initial rows:")
        for a, c in view.rows():
            print(f"  {a} ..follows..> {c}")

        def on_change(events):
            for (a, c), weight in events:
                sign = "+" if weight > 0 else "-"
                print(f"  [{sign}] {a} ..follows..> {c}")

        view.on_change(on_change)

        print("\nadd ex:dana ex:follows ex:ada — new two-hop pairs stream in:")
        graph.add(Triple(EX.dana, EX.follows, EX.ada))

        print("\nremove ex:brin ex:follows ex:cody — their pairs retract:")
        graph.remove(Triple(EX.brin, EX.follows, EX.cody))

        print(f"\nfinal rows ({len(view)}):")
        for a, c in view.rows():
            print(f"  {a} ..follows..> {c}")
        print(f"\nengine metrics: "
              f"delta_batches={engine.metrics()['ivm_delta_batches_total']} "
              f"delta_rows={engine.metrics()['ivm_delta_rows_total']}")


if __name__ == "__main__":
    main()
