"""Quickstart: load RDF data, run SPARQL 1.1 queries through SparqLog.

The example mirrors Section 4.1 of the paper: a small film-directors graph
queried with an OPTIONAL pattern, plus a look at the generated Warded
Datalog± program.

Run with:  python examples/quickstart.py
"""

from repro import Dataset, SparqLogEngine, parse_turtle

TURTLE_DATA = """
@prefix ex: <http://ex.org/> .

ex:glucas      ex:name "George" ; ex:lastname "Lucas" .
ex:sspielberg  ex:name "Steven" .
ex:kbigelow    ex:name "Kathryn" ; ex:lastname "Bigelow" .
"""

QUERY = """
PREFIX ex: <http://ex.org/>
SELECT ?N ?L
WHERE { ?X ex:name ?N . OPTIONAL { ?X ex:lastname ?L } }
ORDER BY ?N
"""


def main() -> None:
    graph = parse_turtle(TURTLE_DATA)
    dataset = Dataset.from_graph(graph)
    engine = SparqLogEngine(dataset)

    print(f"Loaded {len(graph)} triples.\n")

    print("=== Query results (SELECT with OPTIONAL) ===")
    result = engine.query(QUERY)
    for binding in result:
        name = binding.get(result.variables[0])
        lastname = binding.get(result.variables[1])
        print(f"  name={name}  lastname={lastname if lastname else '(unbound)'}")

    print("\n=== Generated Warded Datalog± rules (query translation T_Q) ===")
    query_program = engine.query_program(QUERY)
    for rule in query_program.rules:
        print(f"  {rule!r}")
    for directive in query_program.directives:
        print(f"  {directive!r}")

    print("\n=== ASK query ===")
    ask = "PREFIX ex: <http://ex.org/> ASK WHERE { ?x ex:lastname \"Lucas\" }"
    print(f"  Is there a director with last name Lucas?  {engine.query(ask)}")


if __name__ == "__main__":
    main()
