"""Run the complete experimental evaluation (all tables and figures).

This is the script behind EXPERIMENTS.md: it executes every experiment
driver at a configurable scale and prints the regenerated tables and
figure series.  The defaults are sized for a few minutes on a laptop;
``--scale``/``--timeout`` move it closer to the paper's setup.

Run with:  python examples/run_full_evaluation.py [--scale 0.15] [--queries 20]
"""

from __future__ import annotations

import argparse
import time

from repro.harness import experiments


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="dataset scale factor relative to the paper's sizes")
    parser.add_argument("--queries", type=int, default=20,
                        help="number of queries per performance workload")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-query timeout in seconds (paper: 900s)")
    arguments = parser.parse_args()

    config = experiments.ExperimentConfig(
        scale=arguments.scale,
        query_limit=arguments.queries,
        timeout_seconds=arguments.timeout,
    )
    compliance_config = experiments.ExperimentConfig(
        scale=arguments.scale, query_limit=None, timeout_seconds=arguments.timeout
    )

    start = time.time()

    print(experiments.table1_feature_coverage())
    print()
    print(experiments.table2_benchmark_features(config))
    print()

    _, table3 = experiments.table3_beseppi_compliance(compliance_config)
    print(table3)
    print()

    _, compliance_text = experiments.feasible_sp2bench_compliance(config)
    print(compliance_text)
    print()

    print(experiments.table6_benchmark_statistics(config))
    print()

    figure7 = experiments.figure7_sp2bench_performance(config)
    print(figure7.render())
    print(experiments.table7_8_gmark_summary(figure7))
    print()

    figure8 = experiments.figure8_gmark_social(config)
    print(figure8.render())
    print(experiments.table7_8_gmark_summary(figure8))
    print()

    figure9 = experiments.figure9_gmark_test(config)
    print(figure9.render())
    print(experiments.table7_8_gmark_summary(figure9))
    print()

    figure10 = experiments.figure10_ontology(config)
    print(figure10.render())
    print(experiments.table7_8_gmark_summary(figure10))
    print()

    print(f"Total evaluation time: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
