"""Compliance check: BeSEPPI-style property-path conformance testing.

Runs the full 236-query BeSEPPI-like suite (every query carries its
expected answer) over the three engines and prints the Table 3 error
taxonomy, reproducing the paper's finding that SparqLog and the
Fuseki-like engine are fully standard compliant while the Virtuoso-like
engine fails on recursive property paths.

Run with:  python examples/compliance_check.py
"""

from repro.harness.experiments import ExperimentConfig, table3_beseppi_compliance


def main() -> None:
    config = ExperimentConfig(timeout_seconds=20)
    report, text = table3_beseppi_compliance(config)
    print(text)
    print()
    total = report.total_queries()
    for engine in ("SparqLog", "Native", "VirtuosoLike"):
        correct = report.correct_count(engine)
        print(f"{engine:>14}: {correct}/{total} queries answered correctly")


if __name__ == "__main__":
    main()
