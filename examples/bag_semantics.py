"""Bag semantics: how SparqLog preserves duplicates via Skolem tuple IDs.

SPARQL uses bag (multiset) semantics by default, while Datalog± with set
semantics would silently collapse duplicates.  The paper's solution
(Section 4 / Appendix C) gives every derived tuple a Skolem-generated
tuple ID recording which rule and which grounding produced it.  This
example shows the duplicate-preservation model at work and contrasts it
with DISTINCT, where the IDs are dropped and set semantics applies.

Run with:  python examples/bag_semantics.py
"""

from collections import Counter

from repro import Dataset, SparqLogEngine, parse_turtle
from repro.datalog.rules import Assignment

TURTLE_DATA = """
@prefix ex: <http://ex.org/> .

ex:article1 ex:author ex:alice ; ex:author ex:bob .
ex:article2 ex:author ex:alice .
ex:article3 ex:author ex:bob ; ex:author ex:carol .
"""

PREFIX = "PREFIX ex: <http://ex.org/>\n"

# ?who occurs once per article they (co-)authored — duplicates matter.
BAG_QUERY = PREFIX + "SELECT ?who WHERE { ?article ex:author ?who }"
SET_QUERY = PREFIX + "SELECT DISTINCT ?who WHERE { ?article ex:author ?who }"
UNION_QUERY = (
    PREFIX
    + "SELECT ?who WHERE { { ?a ex:author ?who } UNION { ?b ex:author ?who } }"
)


def author_counts(result) -> Counter:
    return Counter(row[0].value.rsplit("/", 1)[-1] for row in result.rows())


def main() -> None:
    dataset = Dataset.from_graph(parse_turtle(TURTLE_DATA))
    engine = SparqLogEngine(dataset)

    print("=== Bag semantics (default): one row per authorship ===")
    print(f"  {dict(author_counts(engine.query(BAG_QUERY)))}")

    print("\n=== Set semantics (DISTINCT): one row per author ===")
    print(f"  {dict(author_counts(engine.query(SET_QUERY)))}")

    print("\n=== UNION doubles the multiplicities (bag union) ===")
    print(f"  {dict(author_counts(engine.query(UNION_QUERY)))}")

    print("\n=== The Skolem tuple-ID machinery behind it ===")
    bag_program = engine.query_program(BAG_QUERY)
    for rule in bag_program.rules:
        id_assignments = [e for e in rule.body if isinstance(e, Assignment)]
        if id_assignments:
            print(f"  {rule.head.predicate}: tuple ID = {id_assignments[0].expression!r}")
    set_program = engine.query_program(SET_QUERY)
    set_assignments = [
        element
        for rule in set_program.rules
        for element in rule.body
        if isinstance(element, Assignment)
    ]
    print(f"  DISTINCT variant generates {len(set_assignments)} tuple-ID assignments (set semantics).")


if __name__ == "__main__":
    main()
