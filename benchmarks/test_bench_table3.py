"""Benchmark: regenerate Table 3 (BeSEPPI property-path compliance).

Expected shape (matching the paper): SparqLog and the native engine answer
every query correctly; the Virtuoso-like engine produces incomplete
results and errors on the recursive property-path categories.
"""

from repro.compliance.compare import ComparisonOutcome
from repro.harness.experiments import table3_beseppi_compliance


def test_table3_beseppi_compliance(benchmark, compliance_config):
    report, text = benchmark.pedantic(
        table3_beseppi_compliance, args=(compliance_config,), rounds=1, iterations=1
    )
    print()
    print(text)
    # SparqLog and the native engine are fully standard compliant.
    total = report.total_queries()
    assert report.correct_count("SparqLog") == total
    assert report.correct_count("Native") == total
    # The Virtuoso-like engine is not.
    virtuoso_counts = report.outcome_counts("VirtuosoLike")
    assert virtuoso_counts[ComparisonOutcome.ERROR] > 0
    assert virtuoso_counts[ComparisonOutcome.INCOMPLETE_CORRECT] > 0
