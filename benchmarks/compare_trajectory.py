#!/usr/bin/env python
"""Compare two benchmark trajectory artifacts and gate on regressions.

Loads the freshly-recorded ``BENCH_<pr>.json`` and the previous committed
artifact (auto-discovered as the highest-numbered ``BENCH_*.json`` below
the current PR when ``--previous`` is omitted), diffs every metric shared
by both, and **fails on any previously-gated speedup that regressed by
more than the threshold** (default 25%).  Non-speedup metrics — load
rates, memory per triple, absolute times — are reported for the job log
but never fail the build: they gate in their own smoke jobs, with
thresholds chosen per metric.

The comparison keys on ``(suite, test, metric)``; a metric present in
only one artifact is reported as added/removed.  A *removed* speedup
metric is called out loudly (a silently deleted gate is how perf records
grow holes) but does not fail, so benches can be reorganised
deliberately.

Usage::

    python benchmarks/compare_trajectory.py --current BENCH_5.json
    python benchmarks/compare_trajectory.py \
        --current BENCH_5.json --previous BENCH_3.json --threshold 0.25

Exits 1 on a gated regression, 2 on usage / IO errors, 0 otherwise.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

#: Metrics where larger is better and a drop is a gated regression.
GATED_METRICS = frozenset({"speedup_ratio"})
#: Metrics where larger is better (reported only).
HIGHER_BETTER = frozenset({"speedup_ratio", "triples_per_second"})


def load_entries(path: str) -> dict:
    """Load an artifact into a ``{(suite, test, metric): value}`` map."""
    with open(path, "r", encoding="utf-8") as handle:
        entries = json.load(handle)
    if not isinstance(entries, list):
        raise ValueError(f"{path}: expected a JSON array")
    metrics = {}
    for entry in entries:
        key = (entry["suite"], entry["test"], entry["metric"])
        metrics[key] = float(entry["value"])
    return metrics


def find_previous(current_path: str) -> str | None:
    """The highest-numbered committed BENCH_<n>.json below the current one."""
    current_name = os.path.basename(current_path)
    match = re.fullmatch(r"BENCH_(\d+)\.json", current_name)
    current_pr = int(match.group(1)) if match else None
    best_pr, best_path = -1, None
    for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")):
        name_match = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if name_match is None:
            continue
        pr = int(name_match.group(1))
        if current_pr is not None and pr >= current_pr:
            continue
        if os.path.abspath(path) == os.path.abspath(current_path):
            continue
        if pr > best_pr:
            best_pr, best_path = pr, path
    return best_path


def compare(previous: dict, current: dict, threshold: float) -> int:
    """Print the diff; return the number of gated regressions."""
    regressions = 0
    shared = sorted(set(previous) & set(current))
    for key in shared:
        suite, test, metric = key
        old, new = previous[key], current[key]
        if old:
            change = (new - old) / abs(old)
            change_label = f"{change:+.1%}"
        else:
            change = 0.0
            change_label = "n/a"
        verdict = "ok"
        if metric in GATED_METRICS and new < old * (1.0 - threshold):
            verdict = f"REGRESSION (>{threshold:.0%} drop)"
            regressions += 1
        elif metric not in HIGHER_BETTER:
            verdict = "info"
        print(
            f"  {suite}/{test}/{metric}: {old:.4g} -> {new:.4g} "
            f"({change_label}) [{verdict}]"
        )
    for key in sorted(set(current) - set(previous)):
        print(f"  {'/'.join(key)}: (new metric) {current[key]:.4g}")
    for key in sorted(set(previous) - set(current)):
        metric = key[2]
        marker = "GATE REMOVED — was a tracked speedup" if metric in GATED_METRICS else "removed"
        print(f"  {'/'.join(key)}: {marker} (was {previous[key]:.4g})")
    if not shared:
        print("  warning: no shared metrics between the two artifacts")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", required=True, help="freshly recorded BENCH_<pr>.json"
    )
    parser.add_argument(
        "--previous",
        default=None,
        help="baseline artifact (default: highest committed BENCH_<n>.json below current)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional drop of a gated speedup that fails the build (default 0.25)",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(args.current):
        print(f"error: no such artifact {args.current}", file=sys.stderr)
        return 2
    previous_path = args.previous or find_previous(args.current)
    if previous_path is None:
        print("no previous BENCH_*.json found; nothing to compare", flush=True)
        return 0
    if not os.path.exists(previous_path):
        print(f"error: no such artifact {previous_path}", file=sys.stderr)
        return 2

    previous = load_entries(previous_path)
    current = load_entries(args.current)
    print(f"comparing {args.current} against {previous_path}:")
    regressions = compare(previous, current, args.threshold)
    if regressions:
        print(
            f"error: {regressions} gated speedup(s) regressed more than "
            f"{args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    print("trajectory check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
