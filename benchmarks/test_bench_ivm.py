"""Benchmark: incremental view maintenance vs re-evaluation under churn.

The workload holds a two-hop join view (with a FILTER) open over an
encoded graph while a mixed add/remove churn stream mutates ~1% of the
edges per tick.  The IVM engine maintains the view through the delta
pipeline — per changed triple it probes the two scan positions and joins
only the affected bindings, O(|Δ| · degree) work — while the reference
engine re-evaluates the full join after every tick, O(|G|) work that
re-derives everything it already knew.

Acceptance gates:

* the view is delta-maintained (``maintenance == "delta"``) and its
  final state equals a fresh evaluation (multiset equality),
* IVM maintenance is >= **10x** faster than per-tick re-evaluation
  (``speedup_ratio`` metric, regression-gated by
  ``benchmarks/compare_trajectory.py``).
"""

import time
from collections import Counter

from repro.engine import create_engine
from repro.rdf.terms import Triple
from repro.rdf.namespace import Namespace
from repro.sparql.parser import parse_query
from repro.store import EncodedGraph

EX = Namespace("http://ex.org/")

#: Nodes in the graph; out-degree 2 → twice as many edges.
N_NODES = 2500

#: Churn ticks to run; each toggles ``CHURN_PER_TICK`` edges.
TICKS = 8

VIEW_QUERY = (
    "PREFIX ex: <http://ex.org/>\n"
    "SELECT ?a ?c WHERE { ?a ex:p ?b . ?b ex:p ?c . FILTER(?a != ?c) }"
)


def _base_edges():
    """Deterministic pseudo-random graph: every node has out-degree 2."""
    edges = []
    for i in range(N_NODES):
        edges.append(Triple(EX[f"n{i}"], EX.p, EX[f"n{(i * 7 + 1) % N_NODES}"]))
        edges.append(Triple(EX[f"n{i}"], EX.p, EX[f"n{(i * 13 + 5) % N_NODES}"]))
    return edges


def _churn_plan(edges):
    """Mixed add/remove toggles: 1% of the edge pool per tick.

    Walking a rolling window over the pool first *removes* present edges
    and, once the window wraps, *adds* them back — so every tick is a
    mix of insertions and deletions without any RNG (benchmarks must be
    deterministic).
    """
    per_tick = max(1, len(edges) // 100)
    plan = []
    for tick in range(TICKS):
        start = tick * per_tick
        plan.append([edges[(start + k) % len(edges)] for k in range(per_tick)])
    return plan


def _toggle(graph, triple):
    if triple in graph:
        graph.remove(triple)
    else:
        graph.add(triple)


def test_bench_ivm_churn_speedup(bench_metrics):
    """Acceptance gate: >=10x IVM speedup over re-evaluation on churn."""
    edges = _base_edges()
    plan = _churn_plan(edges)
    query = parse_query(VIEW_QUERY)

    ivm_engine = create_engine(EncodedGraph(edges))
    reeval_engine = create_engine(EncodedGraph(edges))
    view = ivm_engine.materialize(query)
    assert view.maintenance == "delta"
    baseline_rows = len(view)
    assert baseline_rows > 0

    ivm_time = 0.0
    reeval_time = 0.0
    for batch in plan:
        # IVM side: the mutation itself drives the delta pipeline, so
        # the maintained state is already current when the loop ends.
        start = time.perf_counter()
        for triple in batch:
            _toggle(ivm_engine.graph, triple)
        ivm_time += time.perf_counter() - start
        # Re-evaluation side: same mutations (untimed), then the full
        # query answers from scratch (timed).
        for triple in batch:
            _toggle(reeval_engine.graph, triple)
        start = time.perf_counter()
        reference = reeval_engine.query(query)
        reeval_time += time.perf_counter() - start

    assert Counter(view.rows()) == Counter(tuple(r) for r in reference.rows())
    changes = sum(len(batch) for batch in plan)
    speedup = reeval_time / max(ivm_time, 1e-9)
    print(
        f"\nivm churn: {changes} changes over {TICKS} ticks, "
        f"maintain={ivm_time * 1e3:.1f}ms reeval={reeval_time * 1e3:.1f}ms "
        f"speedup={speedup:.1f}x"
    )
    bench_metrics.record("ivm", "churn", "speedup_ratio", speedup, "x")
    bench_metrics.record("ivm", "churn", "maintain_time", ivm_time, "s")
    bench_metrics.record(
        "ivm", "churn", "delta_rows", float(view.delta_stats.rows), "rows"
    )
    assert speedup >= 10.0, f"expected >=10x IVM speedup, got {speedup:.2f}x"


def test_bench_ivm_subscription_latency(bench_metrics):
    """Informational: per-change delta latency with a live subscriber."""
    edges = _base_edges()
    engine = create_engine(EncodedGraph(edges))
    view = engine.materialize(VIEW_QUERY)
    events = []
    view.on_change(events.append)
    probes = [
        Triple(EX[f"n{i}"], EX.p, EX[f"n{(i * 3 + 11) % N_NODES}"])
        for i in range(200)
    ]
    start = time.perf_counter()
    for triple in probes:
        _toggle(engine.graph, triple)
    elapsed = time.perf_counter() - start
    per_change = elapsed / len(probes)
    assert events, "subscriber must observe deltas"
    print(
        f"\nivm subscription: {len(probes)} changes in {elapsed * 1e3:.1f}ms "
        f"({per_change * 1e6:.0f}us/change, {len(events)} events)"
    )
    bench_metrics.record("ivm", "subscription", "change_latency", per_change, "s")
