"""Benchmark: id-native property paths vs the term-level ALP baseline.

A gMark test-scenario graph (4 predicates over one node type, the
recursive-path workload of the paper's Figure 9) queried with a fixed,
deterministic mix of recursive path shapes:

* bound-subject closures over compound inner paths (``(p0|p1)+``,
  ``(p2|^p0)*``) — the ALP baseline re-materialises the full inner
  extension at every expansion step, the id engine probes per-node int
  successors,
* a sequence feeding a closure (``p2/(p3/p1)+``) — the shape the
  term-level evaluator must evaluate as a full two-free closure joined
  afterwards, while the id engine binds the middle and expands from
  single nodes,
* backward expansion from a bound object, bounded repetition, a
  two-variable closure, and a both-endpoints-bound reachability ASK
  (bidirectional meet-in-the-middle).

Acceptance gates:

* the id-native path engine is at least **3x** faster over the whole
  workload (measured orders of magnitude more), with identical
  multisets per query,
* a non-recursive path workload (links / sequences / alternatives only)
  does not regress.
"""

import time
from collections import Counter

from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.workloads.gmark import GMarkWorkload
from repro.workloads.gmark import test_scenario as gmark_test_scenario

SCALE = 0.25  # ~1.3k triples, 200 nodes: the ALP side stays CI-sized.

PREFIX = "PREFIX gmark: <http://example.org/gMark/>\n"
NODE = "http://example.org/gMark/Node"

RECURSIVE_QUERIES = [
    f"SELECT ?y WHERE {{ <{NODE}52> (gmark:p0|gmark:p1)+ ?y }}",
    f"SELECT ?y WHERE {{ <{NODE}72> (gmark:p2|^gmark:p0)* ?y }}",
    f"SELECT ?y WHERE {{ <{NODE}62> gmark:p2/(gmark:p3/gmark:p1)+ ?y }}",
    f"SELECT ?x WHERE {{ ?x (gmark:p0)+ <{NODE}110> }}",
    f"SELECT ?x WHERE {{ ?x (gmark:p1/gmark:p2)/(gmark:p2)* <{NODE}136> }}",
    f"SELECT ?y WHERE {{ <{NODE}59> gmark:p0{{1,4}} ?y }}",
    "SELECT ?x ?y WHERE { ?x (gmark:p3)+ ?y }",
    f"ASK {{ <{NODE}52> (gmark:p0|gmark:p1)+ <{NODE}110> }}",
]

NON_RECURSIVE_QUERIES = [
    "SELECT ?x ?y WHERE { ?x gmark:p0/gmark:p1 ?y }",
    f"SELECT ?y WHERE {{ <{NODE}52> (gmark:p0|gmark:p2)/gmark:p1 ?y }}",
    "SELECT ?x ?y WHERE { ?x ^gmark:p2/gmark:p3 ?y }",
]

_WORKLOAD_CACHE = None


def _dataset():
    """Memoised encoded-store gMark instance (built once per session)."""
    global _WORKLOAD_CACHE
    if _WORKLOAD_CACHE is None:
        workload = GMarkWorkload(
            scenario=gmark_test_scenario(), scale=SCALE, backend="encoded"
        )
        _WORKLOAD_CACHE = workload.dataset()
    return _WORKLOAD_CACHE


def _run_workload(evaluator, queries):
    """Evaluate every query, returning (wall seconds, comparable results)."""
    start = time.perf_counter()
    results = [evaluator.evaluate(query) for query in queries]
    elapsed = time.perf_counter() - start
    comparable = [
        result if isinstance(result, bool) else Counter(result.rows())
        for result in results
    ]
    return elapsed, comparable


def _compare(query_texts):
    dataset = _dataset()
    queries = [parse_query(PREFIX + text) for text in query_texts]
    term_time, term_results = _run_workload(
        SparqlEvaluator(dataset, use_id_paths=False), queries
    )
    id_time, id_results = _run_workload(SparqlEvaluator(dataset), queries)
    for position, (expected, actual) in enumerate(zip(term_results, id_results)):
        assert actual == expected, f"result mismatch on query {position}"
    assert any(
        result if isinstance(result, bool) else sum(result.values())
        for result in term_results
    ), "workload produced no solutions at all"
    return term_time, id_time


def test_bench_paths_recursive_speedup(bench_metrics):
    """Acceptance gate: >=3x on the recursive gMark-style workload."""
    term_time, id_time = _compare(RECURSIVE_QUERIES)
    speedup = term_time / max(id_time, 1e-9)
    print(
        f"\nrecursive paths: term-alp={term_time * 1e3:.1f}ms "
        f"id-native={id_time * 1e3:.1f}ms speedup={speedup:.1f}x"
    )
    bench_metrics.record(
        "paths", "gmark_recursive", "speedup_ratio", speedup, "x"
    )
    bench_metrics.record(
        "paths", "gmark_recursive", "idpaths_time", id_time, "s"
    )
    assert speedup >= 3.0, f"expected >=3x id-path speedup, got {speedup:.2f}x"


def test_bench_paths_non_recursive_no_regression(bench_metrics):
    """Non-recursive paths must not regress under the id engine."""
    term_time, id_time = _compare(NON_RECURSIVE_QUERIES)
    speedup = term_time / max(id_time, 1e-9)
    print(
        f"\nnon-recursive paths: term-alp={term_time * 1e3:.1f}ms "
        f"id-native={id_time * 1e3:.1f}ms speedup={speedup:.2f}x"
    )
    bench_metrics.record(
        "paths", "non_recursive", "speedup_ratio", speedup, "x"
    )
    assert id_time <= term_time * 1.2 + 0.01
