"""Benchmark: regenerate Figure 10 (ontological reasoning performance).

Expected shape: SparqLog (reasoning inside the Datalog± program) and the
Stardog-like engine (materialise then query) both answer the ontology
queries; SparqLog stays competitive and handles the recursive
property-path queries over inferred edges.
"""

from repro.harness.experiments import figure10_ontology, table7_8_gmark_summary


def test_figure10_ontology(benchmark, quick_config):
    series = benchmark.pedantic(
        figure10_ontology, args=(quick_config,), rounds=1, iterations=1
    )
    print()
    print(series.render())
    print(table7_8_gmark_summary(series))
    assert series.completed("SparqLog") >= len(series.query_ids) - 1
    assert set(series.times) == {"SparqLog", "StardogLike"}
