#!/usr/bin/env python
"""Record the benchmark trajectory artifact for one PR.

Runs the bench suites under pytest with ``REPRO_BENCH_JSON`` pointed at a
scratch file (see :mod:`benchmarks.conftest`), normalises the raw metric
dump into the committed schema (``benchmarks/bench_trajectory_schema.json``)
by stamping the PR number onto every entry and sorting deterministically,
validates the result, and writes ``BENCH_<pr>.json``.  CI uploads that
file with ``actions/upload-artifact`` so the perf trajectory — speedup
ratios, memory per triple, triples per second — is recorded from PR 3
onward and regressions show up as a bend in the curve, not an anecdote.

Usage::

    python benchmarks/record_trajectory.py --pr 3 --output BENCH_3.json
    python benchmarks/record_trajectory.py --pr 3 --suites planner store idjoin

By default every ``benchmarks/test_bench_*.py`` file runs (the figure /
table benches exercise the drivers but record no metrics); ``--suites``
restricts the run to the named metric-bearing suites for a quick local
refresh.  Exits non-zero when pytest fails or the artifact does not
validate, so the CI job gates on both.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import tempfile

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
SCHEMA_PATH = os.path.join(BENCH_DIR, "bench_trajectory_schema.json")


# ----------------------------------------------------------------------
# schema validation (dependency-free subset of JSON Schema)
# ----------------------------------------------------------------------
def validate_entries(entries: object, schema: dict) -> list:
    """Validate the artifact against the committed schema.

    Implements exactly the subset the schema uses — array-of-objects,
    required keys, per-property type / minimum / minLength — so the gate
    needs no third-party validator.  Returns a list of human-readable
    problems (empty = valid).
    """
    problems = []
    if not isinstance(entries, list):
        return [f"top level must be an array, got {type(entries).__name__}"]
    item_schema = schema.get("items", {})
    required = item_schema.get("required", [])
    properties = item_schema.get("properties", {})
    for position, entry in enumerate(entries):
        label = f"entry {position}"
        if not isinstance(entry, dict):
            problems.append(f"{label}: must be an object")
            continue
        for key in required:
            if key not in entry:
                problems.append(f"{label}: missing required key {key!r}")
        for key, spec in properties.items():
            if key not in entry:
                continue
            value = entry[key]
            expected = spec.get("type")
            if expected == "integer":
                if not isinstance(value, int) or isinstance(value, bool):
                    problems.append(f"{label}: {key!r} must be an integer")
                    continue
            elif expected == "number":
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"{label}: {key!r} must be a number")
                    continue
            elif expected == "string":
                if not isinstance(value, str):
                    problems.append(f"{label}: {key!r} must be a string")
                    continue
            if "minimum" in spec and value < spec["minimum"]:
                problems.append(f"{label}: {key!r} below minimum {spec['minimum']}")
            if "minLength" in spec and len(value) < spec["minLength"]:
                problems.append(f"{label}: {key!r} shorter than {spec['minLength']}")
    return problems


# ----------------------------------------------------------------------
# bench execution
# ----------------------------------------------------------------------
def bench_files(suites) -> list:
    if suites:
        return [os.path.join(BENCH_DIR, f"test_bench_{suite}.py") for suite in suites]
    return sorted(glob.glob(os.path.join(BENCH_DIR, "test_bench_*.py")))


def run_benches(files, raw_path: str) -> int:
    env = dict(os.environ)
    env["REPRO_BENCH_JSON"] = raw_path
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    command = [sys.executable, "-m", "pytest", "-q", "-s", *files]
    print("+", " ".join(command), flush=True)
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pr", type=int, required=True, help="PR number to stamp")
    parser.add_argument(
        "--output", default=None, help="artifact path (default BENCH_<pr>.json)"
    )
    parser.add_argument(
        "--suites",
        nargs="*",
        default=None,
        metavar="SUITE",
        help="restrict to test_bench_<suite>.py files (default: all)",
    )
    args = parser.parse_args(argv)
    output = args.output or os.path.join(REPO_ROOT, f"BENCH_{args.pr}.json")

    files = bench_files(args.suites)
    missing = [path for path in files if not os.path.exists(path)]
    if missing:
        print(f"error: no such bench file(s): {missing}", file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        raw_path = handle.name
    try:
        status = run_benches(files, raw_path)
        if status != 0:
            print(f"error: pytest exited with {status}", file=sys.stderr)
            return status
        with open(raw_path, "r", encoding="utf-8") as handle:
            raw_entries = json.load(handle)
    finally:
        if os.path.exists(raw_path):
            os.unlink(raw_path)

    entries = [{"pr": args.pr, **entry} for entry in raw_entries]
    entries.sort(key=lambda entry: (entry["suite"], entry["test"], entry["metric"]))

    with open(SCHEMA_PATH, "r", encoding="utf-8") as handle:
        schema = json.load(handle)
    problems = validate_entries(entries, schema)
    if problems:
        for problem in problems:
            print(f"schema violation: {problem}", file=sys.stderr)
        return 1
    if not entries:
        print("error: bench run recorded no metrics", file=sys.stderr)
        return 1

    with open(output, "w", encoding="utf-8") as handle:
        json.dump(entries, handle, indent=2, sort_keys=True)
        handle.write("\n")
    suites = sorted({entry["suite"] for entry in entries})
    print(f"wrote {output}: {len(entries)} metrics from suites {suites}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
