"""Benchmark: dictionary-encoded store vs the seed hash-indexed graph.

A >=100k-triple synthetic workload with realistic term reuse (20k
subjects, 10 predicates, shared object IRIs and literals) is loaded into
both backends.  The acceptance gates for the store subsystem:

* bulk loading into the encoded store is at least **3x** faster than
  ``parse_ntriples`` into the seed ``Graph`` (measured ~4.5x),
* the encoded store retains at most **0.5x** the memory per triple of
  the seed graph (measured ~0.35x),
* loading a binary snapshot is at least **3x** faster than re-parsing
  the text (measured ~17x), and
* planned BGP evaluation on the encoded backend returns the identical
  multiset and does not regress against the seed backend.
"""

import gc
import io
import time
import tracemalloc
from collections import Counter

from repro.rdf.graph import Dataset
from repro.rdf.ntriples import parse_ntriples
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.store import bulk_load_ntriples, load_snapshot, save_snapshot

N_TRIPLES = 120_000


def _synthetic_ntriples(n: int = N_TRIPLES) -> str:
    """DBLP-ish shape: strong term reuse, small predicate set.

    The moduli are chosen so that every generated line is a *distinct*
    triple (the object stride is coprime with the subject cycle), keeping
    the loaded size at ``n`` while each term is reused a handful of times.
    """
    lines = []
    for i in range(n):
        subject = f"<http://ex.org/s{i % 25000}>"
        predicate = f"<http://ex.org/p{i % 7}>"
        if i % 4 == 3:
            obj = f'"value {i % 6997}"'
        else:
            obj = f"<http://ex.org/o{(i // 3) % 20011}>"
        lines.append(f"{subject} {predicate} {obj} .")
    lines.append("<http://ex.org/s0> <http://ex.org/selective> <http://ex.org/hit> .")
    return "\n".join(lines)


_TEXT_CACHE = None


def _text() -> str:
    """Memoised document, built on first use so that pytest collection of
    this module (e.g. by the planner-smoke job with every store test
    deselected) does not pay for the 120k-line generation."""
    global _TEXT_CACHE
    if _TEXT_CACHE is None:
        _TEXT_CACHE = _synthetic_ntriples()
    return _TEXT_CACHE


def _best_time(builder, rounds: int = 2):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = builder()
        best = min(best, time.perf_counter() - start)
    return result, best


def _retained_memory(builder) -> int:
    """Bytes still allocated after building (the structure's footprint)."""
    gc.collect()
    tracemalloc.start()
    result = builder()
    gc.collect()
    current, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(result) > N_TRIPLES  # keep the graph alive through measurement
    return current


def test_bench_store_bulk_load_speedup(bench_metrics):
    """Acceptance gate: >=3x bulk-load speedup over the seed parser."""
    seed_graph, seed_time = _best_time(lambda: parse_ntriples(_text()))
    encoded_graph, encoded_time = _best_time(lambda: bulk_load_ntriples(_text()))
    assert len(seed_graph) == len(encoded_graph) > N_TRIPLES
    speedup = seed_time / max(encoded_time, 1e-9)
    print(
        f"\nbulk load: seed={seed_time:.3f}s encoded={encoded_time:.3f}s "
        f"speedup={speedup:.2f}x"
    )
    bench_metrics.record("store", "bulk_load", "speedup_ratio", speedup, "x")
    bench_metrics.record(
        "store",
        "bulk_load",
        "triples_per_second",
        len(encoded_graph) / max(encoded_time, 1e-9),
        "triples/s",
    )
    assert speedup >= 3.0, f"expected >=3x bulk-load speedup, got {speedup:.2f}x"


def test_bench_store_memory_per_triple(bench_metrics):
    """Acceptance gate: <=0.5x memory per triple vs the seed graph."""
    _text()  # pre-build the shared document outside the tracemalloc windows
    seed_bytes = _retained_memory(lambda: parse_ntriples(_text()))
    encoded_bytes = _retained_memory(lambda: bulk_load_ntriples(_text()))
    ratio = encoded_bytes / max(seed_bytes, 1)
    print(
        f"\nmemory/triple: seed={seed_bytes / N_TRIPLES:.0f}B "
        f"encoded={encoded_bytes / N_TRIPLES:.0f}B ratio={ratio:.3f}"
    )
    bench_metrics.record("store", "memory", "memory_ratio", ratio, "x")
    bench_metrics.record(
        "store", "memory", "bytes_per_triple", encoded_bytes / N_TRIPLES, "B"
    )
    assert ratio <= 0.5, f"expected <=0.5x memory per triple, got {ratio:.3f}x"


def test_bench_store_snapshot_warm_start(bench_metrics):
    """Snapshot load beats re-parsing the text by >=3x (measured ~17x)."""
    _, parse_time = _best_time(lambda: parse_ntriples(_text()))
    graph = bulk_load_ntriples(_text())
    buffer = io.BytesIO()
    save_snapshot(graph, buffer)
    data = buffer.getvalue()
    loaded, load_time = _best_time(lambda: load_snapshot(io.BytesIO(data)))
    speedup = parse_time / max(load_time, 1e-9)
    print(
        f"\nsnapshot: load={load_time:.3f}s vs parse={parse_time:.3f}s "
        f"({speedup:.1f}x), {len(data) / 1e6:.1f}MB on disk"
    )
    assert Counter(loaded.id_triples()) == Counter(graph.id_triples())
    bench_metrics.record("store", "snapshot", "speedup_ratio", speedup, "x")
    assert speedup >= 3.0, f"expected >=3x snapshot warm start, got {speedup:.2f}x"


def test_bench_store_bgp_evaluation():
    """Planned BGP evaluation: identical results, no regression vs seed."""
    query = parse_query(
        "SELECT ?s ?a ?b WHERE {"
        " ?s <http://ex.org/p0> ?a ."
        " ?s <http://ex.org/p3> ?b ."
        " ?s <http://ex.org/selective> <http://ex.org/hit> }"
    )
    timings = {}
    rows = {}
    for name, graph in (
        ("hash", parse_ntriples(_text())),
        ("encoded", bulk_load_ntriples(_text())),
    ):
        evaluator = SparqlEvaluator(Dataset.from_graph(graph))
        result, elapsed = _best_time(lambda: evaluator.evaluate(query), rounds=3)
        timings[name] = elapsed
        rows[name] = Counter(result.rows())
    print(
        f"\nbgp eval: hash={timings['hash'] * 1e3:.2f}ms "
        f"encoded={timings['encoded'] * 1e3:.2f}ms"
    )
    assert rows["hash"] == rows["encoded"]
    assert len(rows["hash"]) > 0
    # The evaluator joins over decoded terms, so parity (not speedup) is
    # the bar here; the encoded win is load time and resident size.
    assert timings["encoded"] <= timings["hash"] * 1.5 + 0.01
