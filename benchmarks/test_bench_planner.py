"""Benchmark: cost-based BGP planner vs textual-order evaluation.

SP2Bench- and gMark-style star / chain / cycle patterns where the
selective pattern is listed *last*, so textual-order evaluation pays the
full unselective cross-join before ever seeing the filter.  The planner
must reorder by estimated cardinality and stream, turning the star query
into a handful of index probes.

Expected shape: the planned evaluator is at least 5x faster on the star
query (the acceptance gate) and no slower elsewhere, with multiset-equal
results everywhere.
"""

import time
from collections import Counter

from repro.rdf.graph import Dataset, Graph
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Triple
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/>\n"


def _star_dataset(n_subjects: int = 350, fanout: int = 5) -> Dataset:
    """SP2Bench-style star: wide :a / :b fans, one :selective edge."""
    graph = Graph()
    for i in range(n_subjects):
        subject = EX[f"s{i}"]
        for j in range(fanout):
            graph.add(Triple(subject, EX.a, EX[f"a{i}_{j}"]))
            graph.add(Triple(subject, EX.b, EX[f"b{i}_{j}"]))
    graph.add(Triple(EX.s0, EX.selective, EX.target))
    return Dataset.from_graph(graph)


def _chain_dataset(n_chains: int = 250, length: int = 3) -> Dataset:
    """gMark-style chain: long :p chains, one chain marked :hit."""
    graph = Graph()
    for i in range(n_chains):
        for step in range(length):
            graph.add(Triple(EX[f"c{i}_{step}"], EX.p, EX[f"c{i}_{step + 1}"]))
    graph.add(Triple(EX[f"c0_{length}"], EX.hit, EX.flag))
    return Dataset.from_graph(graph)


def _cycle_dataset(n_nodes: int = 120) -> Dataset:
    """gMark-style cycle: a :p ring plus a single :marked node."""
    graph = Graph()
    for i in range(n_nodes):
        graph.add(Triple(EX[f"n{i}"], EX.p, EX[f"n{(i + 1) % n_nodes}"]))
        graph.add(Triple(EX[f"n{i}"], EX.q, EX[f"n{(i + 7) % n_nodes}"]))
    graph.add(Triple(EX.n0, EX.marked, EX.yes))
    return Dataset.from_graph(graph)


def _best_time(evaluator, query, rounds: int = 3) -> float:
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = evaluator.evaluate(query)
        best = min(best, time.perf_counter() - start)
    return best, result


def _compare(dataset, query_text):
    query = parse_query(PREFIX + query_text)
    naive_time, naive = _best_time(SparqlEvaluator(dataset, use_planner=False), query)
    planned_time, planned = _best_time(SparqlEvaluator(dataset), query)
    assert Counter(planned.rows()) == Counter(naive.rows())
    return naive_time, planned_time


def test_bench_planner_star_speedup(bench_metrics):
    """Acceptance gate: >= 5x on a 3-pattern star, selective pattern last."""
    dataset = _star_dataset()
    naive_time, planned_time = _compare(
        dataset,
        "SELECT ?v ?x ?y WHERE { ?v ex:a ?x . ?v ex:b ?y . ?v ex:selective ex:target }",
    )
    speedup = naive_time / max(planned_time, 1e-9)
    print(f"\nstar: naive={naive_time * 1e3:.2f}ms planned={planned_time * 1e3:.2f}ms "
          f"speedup={speedup:.1f}x")
    bench_metrics.record("planner", "star", "speedup_ratio", speedup, "x")
    assert speedup >= 5.0, f"expected >=5x speedup, got {speedup:.2f}x"


def test_bench_planner_chain(bench_metrics):
    dataset = _chain_dataset()
    naive_time, planned_time = _compare(
        dataset,
        "SELECT ?a WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?d . ?d ex:hit ex:flag }",
    )
    speedup = naive_time / max(planned_time, 1e-9)
    print(f"\nchain: naive={naive_time * 1e3:.2f}ms planned={planned_time * 1e3:.2f}ms "
          f"speedup={speedup:.1f}x")
    bench_metrics.record("planner", "chain", "speedup_ratio", speedup, "x")
    assert speedup >= 2.0, f"expected >=2x speedup, got {speedup:.2f}x"


def test_bench_planner_cycle():
    dataset = _cycle_dataset()
    naive_time, planned_time = _compare(
        dataset,
        "SELECT ?a ?b WHERE { ?a ex:p ?b . ?b ex:q ?c . ?c ex:p ?a . ?a ex:marked ex:yes }",
    )
    speedup = naive_time / max(planned_time, 1e-9)
    print(f"\ncycle: naive={naive_time * 1e3:.2f}ms planned={planned_time * 1e3:.2f}ms "
          f"speedup={speedup:.1f}x")
    # Cycles join back on the first variable; planned evaluation must not
    # regress even though every pattern touches the same predicate fan.
    assert planned_time <= naive_time * 1.5


def test_bench_planner_ask_short_circuits():
    dataset = _star_dataset()
    query = parse_query(
        PREFIX + "ASK WHERE { ?v ex:a ?x . ?v ex:b ?y . ?v ex:selective ex:target }"
    )
    planned_time, result = _best_time(SparqlEvaluator(dataset), query)
    assert result is True
    naive_time, naive_result = _best_time(
        SparqlEvaluator(dataset, use_planner=False), query
    )
    assert naive_result is True
    print(f"\nask: naive={naive_time * 1e3:.2f}ms planned={planned_time * 1e3:.2f}ms")
    assert planned_time <= naive_time
