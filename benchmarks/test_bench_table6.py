"""Benchmark: regenerate Table 6 (benchmark statistics)."""

from repro.harness.experiments import table6_benchmark_statistics


def test_table6_statistics(benchmark, quick_config):
    text = benchmark.pedantic(
        table6_benchmark_statistics, args=(quick_config,), rounds=1, iterations=1
    )
    print()
    print(text)
    assert "gMark-social" in text
    assert "SP2Bench" in text
