"""Benchmark: observability overhead gates and phase-trace recording.

The observability layer must be effectively free when off and cheap when
on.  On the planner chain-join workload this suite measures three
evaluator configurations — no tracer, a disabled tracer attached, an
enabled tracer — and gates:

* disabled tracing <= 3% over the no-tracer baseline (the hot paths are
  a single ``tracer is None``-style check), and
* enabled phase tracing <= 10% (a handful of span records per query,
  never one per row).

Each sample amortises several query evaluations so the 3% margin sits
well above timer noise; a small absolute floor absorbs the rest on
machines where the whole sample is sub-millisecond.

The enabled run also records the per-phase wall-time breakdown
(``phase_parse_seconds`` etc.) through ``bench_metrics.record_phases``,
so the ``BENCH_<pr>.json`` trajectory artifact carries phase data, and
checks that the collected trace round-trips through both exporters
(schema-validated JSON dump, Chrome ``trace_event``).
"""

import gc
import time
from collections import Counter

from repro.obs import Tracer, to_chrome_trace, trace_to_dict, validate_trace
from repro.rdf.graph import Dataset, Graph
from repro.rdf.namespace import Namespace
from repro.rdf.terms import Triple
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/>\n"
CHAIN_QUERY = (
    PREFIX
    + "SELECT ?a WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?d . ?d ex:hit ex:flag }"
)
#: The overhead gate joins the full chain (no selective anchor): the
#: planner cannot collapse it to a few probes, so each evaluation does
#: real per-row execution work and the ratio measures the asymptotic
#: overhead, not the fixed per-query span cost.
ENUM_QUERY = PREFIX + "SELECT ?a WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?d }"

#: Query evaluations per timing sample (amortises per-call noise) and
#: samples per configuration (best-of, interleaved).
EVALS_PER_SAMPLE = 3
SAMPLES = 9
#: Absolute slack absorbing scheduler/timer noise on sub-ms samples.
NOISE_FLOOR_SECONDS = 5e-4


def _chain_dataset(n_chains: int = 250, length: int = 3) -> Dataset:
    """The planner bench's gMark-style chain workload, verbatim."""
    graph = Graph()
    for i in range(n_chains):
        for step in range(length):
            graph.add(Triple(EX[f"c{i}_{step}"], EX.p, EX[f"c{i}_{step + 1}"]))
    graph.add(Triple(EX[f"c0_{length}"], EX.hit, EX.flag))
    return Dataset.from_graph(graph)


def _sample(evaluator, query, tracer=None) -> float:
    """One timing sample: EVALS_PER_SAMPLE evaluations, summed."""
    start = time.perf_counter()
    for _ in range(EVALS_PER_SAMPLE):
        evaluator.evaluate(query)
    elapsed = time.perf_counter() - start
    if tracer is not None:
        # Keep the span list from growing across samples; timing above
        # already includes the recording cost we are measuring.
        tracer.clear()
    return elapsed


def test_bench_obs_overhead(bench_metrics):
    """Acceptance gate: disabled tracing <= 3%, enabled tracing <= 10%.

    Scaled past the planner bench's chain so per-query work dwarfs the
    per-query *fixed* tracing cost (a handful of span records) and the
    ratio measures the real asymptotic overhead.
    """
    dataset = _chain_dataset(n_chains=400)
    query = parse_query(ENUM_QUERY)
    baseline_ev = SparqlEvaluator(dataset)
    disabled_ev = SparqlEvaluator(dataset, tracer=Tracer("bench", enabled=False))
    enabled_tracer = Tracer("bench")
    enabled_ev = SparqlEvaluator(dataset, tracer=enabled_tracer)

    # Results must be identical regardless of observability configuration.
    expected = Counter(baseline_ev.evaluate(query).rows())
    assert Counter(disabled_ev.evaluate(query).rows()) == expected
    assert Counter(enabled_ev.evaluate(query).rows()) == expected
    enabled_tracer.clear()

    baseline = disabled = enabled = float("inf")
    # Interleave the configurations so drift (thermal, allocator state)
    # hits them alike, and keep the collector out of the timed regions —
    # a GC pause landing in one configuration's sample would otherwise
    # dominate the few-percent margins this gate measures.
    gc.collect()
    gc.disable()
    try:
        for _ in range(SAMPLES):
            baseline = min(baseline, _sample(baseline_ev, query))
            disabled = min(disabled, _sample(disabled_ev, query))
            enabled = min(enabled, _sample(enabled_ev, query, enabled_tracer))
    finally:
        gc.enable()

    disabled_ratio = disabled / max(baseline, 1e-9)
    enabled_ratio = enabled / max(baseline, 1e-9)
    print(
        f"\nobs overhead: baseline={baseline * 1e3:.2f}ms "
        f"disabled={disabled * 1e3:.2f}ms ({disabled_ratio:.3f}x) "
        f"enabled={enabled * 1e3:.2f}ms ({enabled_ratio:.3f}x)"
    )
    bench_metrics.record("obs", "chain", "overhead_disabled_ratio", disabled_ratio, "x")
    bench_metrics.record("obs", "chain", "overhead_enabled_ratio", enabled_ratio, "x")
    assert disabled_ratio <= 1.03 or disabled - baseline <= NOISE_FLOOR_SECONDS, (
        f"disabled tracing overhead {disabled_ratio:.3f}x exceeds the 3% gate"
    )
    assert enabled_ratio <= 1.10 or enabled - baseline <= NOISE_FLOOR_SECONDS, (
        f"enabled tracing overhead {enabled_ratio:.3f}x exceeds the 10% gate"
    )


def test_bench_obs_phase_breakdown(bench_metrics):
    """Record parse/plan/lower/execute wall-time shares into the trajectory."""
    dataset = _chain_dataset()
    tracer = Tracer("chain-phases")
    evaluator = SparqlEvaluator(dataset, tracer=tracer)
    for _ in range(EVALS_PER_SAMPLE):
        with tracer.span("parse"):
            query = parse_query(CHAIN_QUERY)
        evaluator.evaluate(query)
    totals = tracer.phase_totals()
    # plan/lower only run on the first iteration (physical cache hits
    # after); parse and execute recur every iteration.
    assert {"parse", "plan", "lower", "execute"} <= set(totals)
    assert all(seconds >= 0.0 for seconds in totals.values())
    print(
        "\nphases: "
        + " ".join(f"{name}={seconds * 1e3:.2f}ms" for name, seconds in sorted(totals.items()))
    )
    bench_metrics.record_phases("obs", "chain", tracer)

    # The collected trace must round-trip through both exporters.
    payload = trace_to_dict(tracer)
    assert validate_trace(payload) == []
    assert any(span["category"] == "operator" for span in payload["spans"])
    chrome = to_chrome_trace(tracer)
    assert chrome["traceEvents"], "chrome trace should carry events"
    assert all(
        event["ph"] == "X" and event["ts"] >= 0 and event["dur"] >= 0
        for event in chrome["traceEvents"]
    )
