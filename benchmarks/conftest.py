"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper through the
drivers in :mod:`repro.harness.experiments`.  The configurations below keep
the datasets small enough that the whole suite finishes in a few minutes;
the ``examples/run_full_evaluation.py`` script runs the same drivers at
larger scale.
"""

import pytest

from repro.harness.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """Small datasets, truncated workloads — used by the per-figure benches."""
    return ExperimentConfig(scale=0.08, query_limit=10, timeout_seconds=8)


@pytest.fixture(scope="session")
def compliance_config() -> ExperimentConfig:
    """Config for the compliance benches (full BeSEPPI, small data)."""
    return ExperimentConfig(scale=0.06, query_limit=None, timeout_seconds=8)
