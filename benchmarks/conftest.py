"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper through the
drivers in :mod:`repro.harness.experiments`.  The configurations below keep
the datasets small enough that the whole suite finishes in a few minutes;
the ``examples/run_full_evaluation.py`` script runs the same drivers at
larger scale.

Structured metric output
------------------------
The perf-gate benches (planner / store / idjoin) report their headline
numbers through the session-scoped :func:`bench_metrics` fixture in
addition to asserting on them.  When the ``REPRO_BENCH_JSON`` environment
variable names a path, every recorded entry is dumped there as a JSON
array at session end — ``benchmarks/record_trajectory.py`` turns that raw
dump into the committed-schema ``BENCH_<pr>.json`` trajectory artifact
that CI uploads.  (An environment variable rather than a pytest option so
the hook works no matter which directory pytest was invoked on.)
"""

import json
import os
from typing import List

import pytest

from repro.harness.experiments import ExperimentConfig


class BenchMetrics:
    """Collects structured benchmark metrics across a pytest session."""

    def __init__(self) -> None:
        self.entries: List[dict] = []

    def record(
        self, suite: str, test: str, metric: str, value: float, unit: str, **extra
    ) -> None:
        """Record one measurement (a speedup ratio, bytes/triple, ...)."""
        entry = {
            "suite": suite,
            "test": test,
            "metric": metric,
            "value": float(value),
            "unit": unit,
        }
        entry.update(extra)
        self.entries.append(entry)

    def record_phases(self, suite: str, test: str, tracer) -> None:
        """Record a tracer's per-phase totals as ``phase_<name>_seconds``.

        One entry per phase span name (parse / plan / lower / execute):
        the per-phase wall-time breakdown carried by the trajectory
        artifact.  Informational — the trajectory gate only enforces the
        ``speedup_ratio`` metrics.
        """
        for name, seconds in sorted(tracer.phase_totals().items()):
            self.record(suite, test, f"phase_{name}_seconds", seconds, "s")


def pytest_configure(config):
    config._repro_bench_metrics = BenchMetrics()


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("REPRO_BENCH_JSON")
    collector = getattr(session.config, "_repro_bench_metrics", None)
    if not path or collector is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(collector.entries, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def bench_metrics(request) -> BenchMetrics:
    """The session's metric collector (see module docstring)."""
    return request.config._repro_bench_metrics


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """Small datasets, truncated workloads — used by the per-figure benches."""
    return ExperimentConfig(scale=0.08, query_limit=10, timeout_seconds=8)


@pytest.fixture(scope="session")
def compliance_config() -> ExperimentConfig:
    """Config for the compliance benches (full BeSEPPI, small data)."""
    return ExperimentConfig(scale=0.06, query_limit=None, timeout_seconds=8)
