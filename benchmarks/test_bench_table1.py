"""Benchmark: regenerate Table 1 (SPARQL feature coverage of SparqLog)."""

from repro.harness.experiments import table1_feature_coverage


def test_table1_feature_coverage(benchmark):
    text = benchmark.pedantic(table1_feature_coverage, rounds=1, iterations=1)
    print()
    print(text)
    assert "Property paths" in text
