"""Benchmark: regenerate Figure 9 / Tables 8 and 10 (gMark Test)."""

from repro.harness.experiments import figure9_gmark_test, table7_8_gmark_summary


def test_figure9_gmark_test(benchmark, quick_config):
    series = benchmark.pedantic(
        figure9_gmark_test, args=(quick_config,), rounds=1, iterations=1
    )
    print()
    print(series.render())
    print(table7_8_gmark_summary(series))
    assert series.completed("SparqLog") >= 1
    assert series.completed("Native") >= 1
    # The Virtuoso-like engine rejects two-variable recursive paths.
    assert series.failures("VirtuosoLike") >= series.failures("Native")
