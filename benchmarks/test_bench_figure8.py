"""Benchmark: regenerate Figure 8 / Tables 7 and 9 (gMark Social).

Expected shape: SparqLog and the native engine answer the path queries;
the Virtuoso-like engine cannot answer the recursive two-variable ones
(errors), mirroring the paper's finding that Virtuoso fails on a large
fraction of the gMark workload.
"""

from repro.harness.experiments import figure8_gmark_social, table7_8_gmark_summary


def test_figure8_gmark_social(benchmark, quick_config):
    series = benchmark.pedantic(
        figure8_gmark_social, args=(quick_config,), rounds=1, iterations=1
    )
    print()
    print(series.render())
    print(table7_8_gmark_summary(series))
    assert series.failures("VirtuosoLike") >= 1
    assert series.completed("SparqLog") >= series.completed("VirtuosoLike")
