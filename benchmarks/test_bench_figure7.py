"""Benchmark: regenerate Figure 7 / Table 11 (SP2Bench performance).

Expected shape: all three systems answer the SP2Bench-like queries; total
times are within a small factor of each other on this workload (no
recursive property paths are involved).
"""

from repro.harness.experiments import (
    figure7_sp2bench_performance,
    table7_8_gmark_summary,
)


def test_figure7_sp2bench_performance(benchmark, quick_config):
    series = benchmark.pedantic(
        figure7_sp2bench_performance, args=(quick_config,), rounds=1, iterations=1
    )
    print()
    print(series.render())
    print(table7_8_gmark_summary(series))
    assert series.completed("SparqLog") >= len(series.query_ids) - 1
    assert series.completed("Native") >= len(series.query_ids) - 1
