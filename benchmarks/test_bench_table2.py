"""Benchmark: regenerate Table 2 (feature coverage of SPARQL benchmarks)."""

from repro.harness.experiments import table2_benchmark_features


def test_table2_benchmark_features(benchmark, quick_config):
    text = benchmark.pedantic(
        table2_benchmark_features, args=(quick_config,), rounds=1, iterations=1
    )
    print()
    print(text)
    assert "FEASIBLE (S)" in text
    assert "paper reference" in text
