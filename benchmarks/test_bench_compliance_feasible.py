"""Benchmark: Section 6.2 compliance on FEASIBLE(S) and SP2Bench.

Expected shape: SparqLog and the native engine agree with the majority
vote on every query; the Virtuoso-like engine deviates on some queries
(duplicate handling) and never forms its own majority.
"""

from repro.compliance.compare import ComparisonOutcome
from repro.harness.experiments import ExperimentConfig, feasible_sp2bench_compliance


def test_feasible_and_sp2bench_compliance(benchmark):
    config = ExperimentConfig(scale=0.05, query_limit=25, timeout_seconds=8)
    reports, text = benchmark.pedantic(
        feasible_sp2bench_compliance, args=(config,), rounds=1, iterations=1
    )
    print()
    print(text)
    for report in reports.values():
        total = report.total_queries()
        counts = report.outcome_counts("SparqLog")
        # SparqLog answers every supported query in agreement with the majority.
        assert counts[ComparisonOutcome.CORRECT] >= total - counts[ComparisonOutcome.ERROR]
        assert report.correct_count("Native") == total
