"""Ablation benchmarks for the design choices called out in DESIGN.md.

* **Tuple-ID (bag) vs set semantics** — the Skolem duplicate-preservation
  machinery is the translation's main overhead; DISTINCT queries drop it.
* **Transitive closure strategy** — the Datalog engine's semi-naive
  fixpoint vs the native evaluator's per-source expansion on a recursive
  two-variable path query (the workload where the two approaches diverge).
* **Data translation cost** — T_D is the per-query "loading" cost the
  performance experiments pay when reloading the dataset, and it must
  scale linearly with the number of triples.
"""

import pytest

from repro.baselines.native import NativeSparqlEngine
from repro.core.data_translation import DataTranslator
from repro.core.engine import SparqLogEngine
from repro.rdf.graph import Dataset, Graph
from repro.rdf.terms import IRI, Triple
from repro.workloads.gmark import GMarkWorkload
from repro.workloads.gmark import test_scenario as gmark_test_scenario

PREFIX = "PREFIX gmark: <http://example.org/gMark/>\n"


@pytest.fixture(scope="module")
def gmark_dataset() -> Dataset:
    return GMarkWorkload(gmark_test_scenario(), scale=0.15, seed=9).dataset()


def test_ablation_bag_vs_set_semantics(benchmark, gmark_dataset):
    """Bag semantics (Skolem tuple IDs) vs DISTINCT (set semantics)."""
    engine = SparqLogEngine(gmark_dataset, timeout_seconds=30)
    bag_query = PREFIX + "SELECT ?x ?y WHERE { ?x gmark:p0/gmark:p1 ?y }"
    set_query = PREFIX + "SELECT DISTINCT ?x ?y WHERE { ?x gmark:p0/gmark:p1 ?y }"

    def run_both():
        bag = engine.query(bag_query)
        distinct = engine.query(set_query)
        return bag, distinct

    bag, distinct = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nbag rows: {len(bag)}, distinct rows: {len(distinct)}")
    assert len(bag) >= len(distinct)


def test_ablation_closure_seminaive_vs_per_source(benchmark, gmark_dataset):
    """Semi-naive Datalog closure vs the native per-source expansion."""
    query = PREFIX + "SELECT DISTINCT ?x ?y WHERE { ?x (gmark:p0|gmark:p1)+ ?y }"
    sparqlog = SparqLogEngine(gmark_dataset, timeout_seconds=60)
    native = NativeSparqlEngine(gmark_dataset)

    def run_both():
        return sparqlog.query(query), native.query(query)

    translated, reference = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert translated.counter() == reference.counter()


def test_ablation_data_translation_scaling(benchmark):
    """T_D cost grows linearly with the number of triples."""
    def build(count):
        graph = Graph()
        for index in range(count):
            graph.add(
                Triple(IRI(f"http://n/{index}"), IRI("http://p"), IRI(f"http://n/{index + 1}"))
            )
        return Dataset.from_graph(graph)

    small, large = build(500), build(2000)
    translator = DataTranslator()

    def run_both():
        return translator.translate(small), translator.translate(large)

    program_small, program_large = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert len(program_large.facts) > 3 * len(program_small.facts)
