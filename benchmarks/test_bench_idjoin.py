"""Benchmark: id-native BGP execution + FILTER pushdown vs the decoded path.

A ~90k-triple two-fan workload over the encoded store: every subject
carries a small ``:small`` fan and a larger ``:big`` fan, and the query
joins both fans then FILTERs the ``:small`` object down to a handful of
rows.  The PR 2 decoded path (``use_id_execution=False,
use_filter_pushdown=False``) materialises the full two-fan join as boxed
``Term`` bindings and post-filters it; the id-native pipeline joins over
raw dictionary ids and kills non-qualifying rows right after the step
that binds the filtered variable, so the second fan is only probed for
the survivors.

Acceptance gates:

* the id-native + pushdown evaluator is at least **3x** faster on the
  FILTER-selective join (measured ~30-50x), with the identical multiset,
* id-native execution without any FILTER does not regress against the
  decoded path on the same join.
"""

import time
from collections import Counter

from repro.rdf.graph import Dataset
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.parser import parse_query
from repro.store import bulk_load_ntriples

N_TRIPLES = 90_000

#: The two subject/predicate strides must stay coprime so every subject
#: receives both fans (a shared divisor would segregate the predicates
#: by subject and empty the join).
N_SUBJECTS = 4999

FILTER_QUERY = (
    "SELECT ?s ?a ?b WHERE {"
    " ?s <http://ex.org/small> ?a ."
    " ?s <http://ex.org/big> ?b ."
    " FILTER(?a = <http://ex.org/o42>) }"
)

JOIN_QUERY = (
    "SELECT ?s ?a WHERE {"
    " ?s <http://ex.org/small> ?a ."
    " ?s <http://ex.org/big> <http://ex.org/hub> }"
)

_GRAPH_CACHE = None


def _encoded_graph():
    """Memoised workload graph (built once per session, ~90k triples)."""
    global _GRAPH_CACHE
    if _GRAPH_CACHE is None:
        lines = []
        for i in range(N_TRIPLES):
            subject = f"<http://ex.org/s{i % N_SUBJECTS}>"
            if i % 4 == 0:
                predicate = "<http://ex.org/small>"
                obj = f"<http://ex.org/o{(i // 4) % 9973}>"
            elif i % 1000 == 1:
                predicate = "<http://ex.org/big>"
                obj = "<http://ex.org/hub>"
            else:
                predicate = "<http://ex.org/big>"
                obj = f"<http://ex.org/b{(i // 3) % 14983}>"
            lines.append(f"{subject} {predicate} {obj} .")
        _GRAPH_CACHE = bulk_load_ntriples("\n".join(lines))
    return _GRAPH_CACHE


def _best_time(evaluator, query, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = evaluator.evaluate(query)
        best = min(best, time.perf_counter() - start)
    return best, result


def _compare(query_text, rounds=3):
    """Time the PR 2 decoded path vs the id-native + pushdown pipeline."""
    dataset = Dataset.from_graph(_encoded_graph())
    query = parse_query(query_text)
    decoded_time, decoded = _best_time(
        SparqlEvaluator(dataset, use_id_execution=False, use_filter_pushdown=False),
        query,
        rounds,
    )
    idnative_time, idnative = _best_time(SparqlEvaluator(dataset), query, rounds)
    assert Counter(decoded.rows()) == Counter(idnative.rows())
    assert len(decoded) > 0
    return decoded_time, idnative_time


def test_bench_idjoin_filter_selective_speedup(bench_metrics):
    """Acceptance gate: >=3x on the FILTER-selective two-fan join."""
    decoded_time, idnative_time = _compare(FILTER_QUERY, rounds=2)
    speedup = decoded_time / max(idnative_time, 1e-9)
    print(
        f"\nfilter-selective: decoded={decoded_time * 1e3:.1f}ms "
        f"id-native={idnative_time * 1e3:.1f}ms speedup={speedup:.1f}x"
    )
    bench_metrics.record(
        "idjoin", "filter_selective", "speedup_ratio", speedup, "x"
    )
    bench_metrics.record(
        "idjoin", "filter_selective", "idnative_time", idnative_time, "s"
    )
    assert speedup >= 3.0, f"expected >=3x id-native speedup, got {speedup:.2f}x"


def test_bench_idjoin_no_filter_no_regression(bench_metrics):
    """Id-native joins with no FILTER at all must not regress."""
    decoded_time, idnative_time = _compare(JOIN_QUERY)
    speedup = decoded_time / max(idnative_time, 1e-9)
    print(
        f"\njoin-only: decoded={decoded_time * 1e3:.1f}ms "
        f"id-native={idnative_time * 1e3:.1f}ms speedup={speedup:.2f}x"
    )
    bench_metrics.record("idjoin", "join_only", "speedup_ratio", speedup, "x")
    assert idnative_time <= decoded_time * 1.2 + 0.01
