"""Benchmark: leapfrog-triejoin (WCOJ) vs binary joins on cyclic BGPs.

The workload is the classic worst case for binary join plans: a skewed
"hub" relation (every spoke points at one hub node and back) plus a
small clique.  A binary index-nested-loop triangle plan must enumerate
every wedge through the hub — Θ(N²) intermediate pairs that almost all
die at the closing pattern — while the leapfrog-triejoin operator
intersects the sorted id runs level by level and only ever touches
candidates that extend to a result ("Skew Strikes Back", Ngo/Ré/Rudra
2013).  The clique supplies the actual triangles/4-cliques so the result
multiset is non-trivial in both plans.

Acceptance gates:

* ``LeapfrogJoin`` is what lowering selects for the cyclic queries on
  the encoded store, with the identical multiset to the binary plan,
* >= **3x** on the triangle query and the 4-clique query
  (``speedup_ratio`` metrics, regression-gated by
  ``benchmarks/compare_trajectory.py``),
* acyclic chains still lower to the binary operator, and leaving the
  WCOJ knob on costs them no more than noise (``overhead_ratio`` metric,
  recorded for the trajectory but not speedup-gated).
"""

import time
from collections import Counter

from repro.rdf.graph import Dataset
from repro.sparql.evaluator import SparqlEvaluator
from repro.sparql.physical import IndexNestedLoopJoin, LeapfrogJoin
from repro.sparql.parser import parse_query
from repro.store import bulk_load_ntriples

#: Spokes of the hub: each contributes the wedge (spoke -> hub -> spoke').
N_SPOKES = 700

#: Clique nodes: all ordered pairs are edges (132 for 12 nodes).
N_CLIQUE = 12

#: Length of the linear r-chain used by the acyclic no-regression case.
N_CHAIN = 2000

TRIANGLE_QUERY = (
    "SELECT ?a ?b ?c WHERE {"
    " ?a <http://ex.org/p> ?b ."
    " ?b <http://ex.org/p> ?c ."
    " ?c <http://ex.org/p> ?a }"
)

CLIQUE4_QUERY = (
    "SELECT ?a ?b ?c ?d WHERE {"
    " ?a <http://ex.org/p> ?b ."
    " ?a <http://ex.org/p> ?c ."
    " ?a <http://ex.org/p> ?d ."
    " ?b <http://ex.org/p> ?c ."
    " ?b <http://ex.org/p> ?d ."
    " ?c <http://ex.org/p> ?d }"
)

CHAIN_QUERY = (
    "SELECT ?a ?b ?c ?d WHERE {"
    " ?a <http://ex.org/r> ?b ."
    " ?b <http://ex.org/r> ?c ."
    " ?c <http://ex.org/r> ?d }"
)

_GRAPH_CACHE = None


def _encoded_graph():
    """Memoised workload graph: hub wedges + clique + acyclic chain."""
    global _GRAPH_CACHE
    if _GRAPH_CACHE is None:
        lines = []
        hub = "<http://ex.org/hub>"
        for i in range(N_SPOKES):
            spoke = f"<http://ex.org/n{i}>"
            lines.append(f"{spoke} <http://ex.org/p> {hub} .")
            lines.append(f"{hub} <http://ex.org/p> {spoke} .")
        for i in range(N_CLIQUE):
            for j in range(N_CLIQUE):
                if i != j:
                    lines.append(
                        f"<http://ex.org/c{i}> <http://ex.org/p>"
                        f" <http://ex.org/c{j}> ."
                    )
        for i in range(N_CHAIN):
            lines.append(
                f"<http://ex.org/u{i}> <http://ex.org/r>"
                f" <http://ex.org/u{i + 1}> ."
            )
        _GRAPH_CACHE = bulk_load_ntriples("\n".join(lines))
    return _GRAPH_CACHE


def _best_time(evaluator, query, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = evaluator.evaluate(query)
        best = min(best, time.perf_counter() - start)
    return best, result


def _compare_cyclic(query_text, rounds):
    """Time the binary-join plan vs the leapfrog plan on a cyclic query."""
    dataset = Dataset.from_graph(_encoded_graph())
    query = parse_query(query_text)
    binary_evaluator = SparqlEvaluator(dataset, use_wcoj=False)
    leapfrog_evaluator = SparqlEvaluator(dataset)
    binary_time, binary = _best_time(binary_evaluator, query, rounds)
    leapfrog_time, leapfrog = _best_time(leapfrog_evaluator, query, rounds)
    assert isinstance(
        binary_evaluator.last_physical_plan.root.child, IndexNestedLoopJoin
    )
    assert isinstance(
        leapfrog_evaluator.last_physical_plan.root.child, LeapfrogJoin
    ), "lowering must select the leapfrog operator for the cyclic BGP"
    assert Counter(binary.rows()) == Counter(leapfrog.rows())
    assert len(leapfrog) > 0
    return binary_time, leapfrog_time


def test_bench_wcoj_triangle_speedup(bench_metrics):
    """Acceptance gate: >=3x on the skewed triangle query."""
    binary_time, leapfrog_time = _compare_cyclic(TRIANGLE_QUERY, rounds=2)
    speedup = binary_time / max(leapfrog_time, 1e-9)
    print(
        f"\ntriangle: binary={binary_time * 1e3:.1f}ms "
        f"leapfrog={leapfrog_time * 1e3:.1f}ms speedup={speedup:.1f}x"
    )
    bench_metrics.record("wcoj", "triangle", "speedup_ratio", speedup, "x")
    bench_metrics.record("wcoj", "triangle", "leapfrog_time", leapfrog_time, "s")
    assert speedup >= 3.0, f"expected >=3x leapfrog speedup, got {speedup:.2f}x"


def test_bench_wcoj_clique4_speedup(bench_metrics):
    """Acceptance gate: >=3x on the 4-clique query."""
    binary_time, leapfrog_time = _compare_cyclic(CLIQUE4_QUERY, rounds=2)
    speedup = binary_time / max(leapfrog_time, 1e-9)
    print(
        f"\nclique4: binary={binary_time * 1e3:.1f}ms "
        f"leapfrog={leapfrog_time * 1e3:.1f}ms speedup={speedup:.1f}x"
    )
    bench_metrics.record("wcoj", "clique4", "speedup_ratio", speedup, "x")
    assert speedup >= 3.0, f"expected >=3x leapfrog speedup, got {speedup:.2f}x"


def test_bench_wcoj_acyclic_no_regression(bench_metrics):
    """Leaving the WCOJ knob on must not slow down acyclic BGPs.

    The chain lowers to the binary operator either way (GYO finds it
    acyclic), so the only possible cost is the eligibility analysis —
    recorded as ``overhead_ratio`` (not a gated speedup metric) and
    asserted against a generous noise bound.
    """
    dataset = Dataset.from_graph(_encoded_graph())
    query = parse_query(CHAIN_QUERY)
    wcoj_on = SparqlEvaluator(dataset)
    wcoj_off = SparqlEvaluator(dataset, use_wcoj=False)
    off_time, off_rows = _best_time(wcoj_off, query, rounds=3)
    on_time, on_rows = _best_time(wcoj_on, query, rounds=3)
    assert isinstance(wcoj_on.last_physical_plan.root.child, IndexNestedLoopJoin)
    assert Counter(off_rows.rows()) == Counter(on_rows.rows())
    assert len(on_rows) == N_CHAIN - 2
    ratio = on_time / max(off_time, 1e-9)
    print(
        f"\nacyclic chain: wcoj-off={off_time * 1e3:.1f}ms "
        f"wcoj-on={on_time * 1e3:.1f}ms ratio={ratio:.2f}"
    )
    bench_metrics.record("wcoj", "acyclic_chain", "overhead_ratio", ratio, "x")
    assert ratio <= 1.5, f"WCOJ eligibility analysis cost {ratio:.2f}x on acyclic BGP"
